// Extension beyond the paper: how does the MPMD/SPMD gap evolve with
// processor count? The paper measured 4 processors throughout; this bench
// sweeps 2..16 on em3d-ghost and water-atomic and reports the CC++/Split-C
// ratio per machine size. The expectation from the paper's analysis: the
// gap is a per-access property, so it should stay roughly flat while both
// absolute times fall with added processors (until collective costs bite).
//
// Host-scaling mode (the parallel engine):
//
//   bench_scaling --threads N[,N2,...] [--nodes N[,N2,...]] [--json[=PATH]]
//
// Thread sweep: runs a 64-node weak-scaling EM3D workload once on the
// sequential engine and once sharded across each requested worker count,
// asserts every parallel run is bit-identical to the sequential one
// (elapsed vtime, checksum, message/switch counts, and the per-node
// dispatch digests), and reports host wall-clock plus speedup.
//
// Node sweep: scales the simulated machine itself (64 .. 100k+ simulated
// nodes) at a fixed worker count, reporting wall-clock, resident memory,
// and bytes per simulated node. Large machines (>= 10k nodes) switch to a
// lighter per-node workload and 32 KiB fiber stacks so a 100k-node run
// completes in minutes on one core.
//
// --json writes BENCH_scaling.json (schema tham-scaling-v2): both sweeps,
// host_cpus, an explicit `oversubscribed` mark on every point whose worker
// count exceeds the host's cpus (wall-clock speedup is not attainable
// there; the run still proves bit-identity), and the epoch-protocol
// counter block (Engine::EpochProfile) of the largest parallel run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "common/env.hpp"
#include "common/hash.hpp"
#include "json_out.hpp"
#include "apps/water.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

int ratio_sweep() {
  std::printf("Scaling sweep (extension): CC++/Split-C ratio vs processor"
              " count\n\n");

  stats::Table t({"app", "procs", "split-c (s)", "cc++ (s)", "ratio"});

  for (int procs : {2, 4, 8, 16}) {
    apps::em3d::Config cfg;
    cfg.procs = procs;
    cfg.graph_nodes = 100 * procs;  // weak scaling: constant work per proc
    cfg.degree = 10;
    cfg.iters = 5;
    cfg.remote_fraction = 0.5;
    double sc = to_sec(
        apps::em3d::run_splitc(cfg, apps::em3d::Version::Ghost).elapsed);
    double cc = to_sec(
        apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost).elapsed);
    t.add_row({"em3d-ghost 50%", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  for (int procs : {2, 4, 8}) {
    apps::water::Config cfg;
    cfg.procs = procs;
    cfg.molecules = 32 * procs;  // weak scaling
    cfg.steps = 1;
    double sc = to_sec(
        apps::water::run_splitc(cfg, apps::water::Version::Atomic).elapsed);
    double cc = to_sec(
        apps::water::run_ccxx(cfg, apps::water::Version::Atomic).elapsed);
    t.add_row({"water-atomic", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  t.print();
  std::printf("\nObservation: water's per-pair gap stays ~flat (the gap is a"
              " per-access property), while em3d-ghost's grows\nwith machine"
              " size — the CC++ collectives (centralized barrier, per-thread"
              " parfor fetches) scale worse than\nSplit-C's split-phase"
              " pipeline, compounding the paper's per-access overheads at"
              " larger machine sizes.\n");
  return 0;
}

// --- Host-scaling mode ------------------------------------------------------

/// Resident-set size from /proc/self/status, in KiB (0 where unsupported).
long read_vm_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  std::size_t klen = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, klen) == 0 && line[klen] == ':') {
      kb = std::strtol(line + klen + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// The weak-scaling EM3D workload for `sim_nodes` simulated processors.
/// Large machines get lighter per-node work (the point there is machine
/// size, not per-node compute) so a 100k-node run stays in minutes.
apps::em3d::Config scaled_config(int sim_nodes) {
  apps::em3d::Config cfg;
  cfg.procs = sim_nodes;
  if (sim_nodes >= 10000) {
    cfg.graph_nodes = 2 * sim_nodes;  // one E and one H node per processor
    cfg.degree = 4;
    cfg.iters = 2;
  } else {
    cfg.graph_nodes = 100 * sim_nodes;
    cfg.degree = 10;
    cfg.iters = 5;
  }
  cfg.remote_fraction = 0.5;
  return cfg;
}

struct Point {
  int threads = 1;
  int sim_nodes = 0;
  int shards_used = 1;
  apps::RunResult result;
  std::uint64_t digest = 0;  ///< combined per-node dispatch digests
  double seconds = 0;        ///< host wall clock
  long rss_kb = 0;           ///< VmRSS right after run(), engine still live
  sim::Engine::EpochProfile prof;
};

Point run_em3d(int threads, int sim_nodes) {
  apps::em3d::Config cfg = scaled_config(sim_nodes);
  // 32 KiB fiber stacks on big machines: EM3D tasks are shallow, and stack
  // memory is the dominant per-node cost at 100k nodes.
  std::size_t stack_bytes =
      sim_nodes >= 10000 ? 32 * 1024 : 128 * 1024;
  Point p;
  p.threads = threads;
  p.sim_nodes = sim_nodes;
  auto t0 = std::chrono::steady_clock::now();
  sim::Engine engine(cfg.procs, default_cost_model(), stack_bytes);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  p.result =
      apps::em3d::run_splitc(engine, net, am, cfg, apps::em3d::Version::Ghost);
  auto t1 = std::chrono::steady_clock::now();
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  p.rss_kb = read_vm_kb("VmRSS");
  p.shards_used = engine.shards_used();
  p.prof = engine.epoch_profile();
  for (NodeId i = 0; i < engine.size(); ++i) {
    p.digest = hash_mix(p.digest, engine.node(i).counters().dispatch_digest);
  }
  return p;
}

bool identical(const Point& a, const Point& b) {
  return a.result.elapsed == b.result.elapsed &&
         a.result.checksum == b.result.checksum &&
         a.result.messages == b.result.messages &&
         a.result.thread_creates == b.result.thread_creates &&
         a.result.context_switches == b.result.context_switches &&
         a.result.sync_ops == b.result.sync_ops && a.digest == b.digest;
}

void profile_fields(bench::JsonWriter& w, const sim::Engine::EpochProfile& p) {
  w.field("epochs", p.epochs);
  w.field("shard_epochs", p.shard_epochs);
  w.field("parked_epochs", p.parked_epochs);
  w.field("events", p.events);
  w.field("stale_events", p.stale_events);
  w.field("max_epoch_events", p.max_epoch_events);
  w.field("merged_msgs", p.merged_msgs);
  w.field("flushes", p.flushes);
  w.field("drain_ns", p.drain_ns);
  w.field("merge_ns", p.merge_ns);
  w.field("barrier_ns", p.barrier_ns);
  w.field("parked_ns", p.parked_ns);
  w.field("plan_ns", p.plan_ns);
  w.field("wall_ns", p.wall_ns);
}

int host_scaling(const std::vector<int>& threads_sweep,
                 const std::vector<int>& nodes_sweep, bool json,
                 const std::string& json_path) {
  unsigned host_cpus = std::thread::hardware_concurrency();
  bool all_identical = true;

  // --- thread sweep at the reference 64-node machine ---
  std::printf("Host-scaling run: em3d-ghost, 64 simulated nodes (weak"
              " scaling), %u host cpu(s)\n\n",
              host_cpus);
  Point seq64 = run_em3d(1, 64);
  std::vector<Point> tpoints;
  for (int n : threads_sweep) {
    if (n <= 1) continue;
    tpoints.push_back(run_em3d(n, 64));
  }

  stats::Table t({"engine", "host (s)", "speedup", "bit-identical",
                  "oversubscribed"});
  t.add_row({"sequential", stats::Table::num(seq64.seconds, 3), "-", "-",
             "-"});
  for (const Point& p : tpoints) {
    bool bit = identical(seq64, p);
    all_identical = all_identical && bit;
    t.add_row({std::to_string(p.threads) + "-thread",
               stats::Table::num(p.seconds, 3),
               stats::Table::num(seq64.seconds / p.seconds, 2),
               bit ? "yes" : "NO",
               static_cast<unsigned>(p.threads) > host_cpus ? "yes" : "no"});
  }
  t.print();
  for (const Point& p : tpoints) {
    if (static_cast<unsigned>(p.threads) > host_cpus) {
      std::printf("\nnote: worker counts above %u host cpu(s) are"
                  " oversubscribed — wall-clock speedup is not\nattainable"
                  " there; those runs still exercise the sharded engine and"
                  " prove bit-identity.\n",
                  host_cpus);
      break;
    }
  }

  // --- node sweep: scale the simulated machine itself ---
  std::vector<Point> npoints;
  std::vector<std::uint8_t> nbit;
  if (!nodes_sweep.empty()) {
    int nthreads = 1;
    for (int n : threads_sweep) nthreads = std::max(nthreads, n);
    std::printf("\nMachine-size sweep: em3d-ghost, %d worker thread(s)\n\n",
                nthreads);
    stats::Table nt({"sim nodes", "host (s)", "vtime (s)", "messages",
                     "rss (MB)", "KiB/node", "bit-identical"});
    for (int n : nodes_sweep) {
      Point par = run_em3d(nthreads, n);
      Point ref = run_em3d(1, n);
      bool bit = identical(ref, par);
      all_identical = all_identical && bit;
      npoints.push_back(par);
      nbit.push_back(bit ? 1 : 0);
      nt.add_row({std::to_string(n), stats::Table::num(par.seconds, 3),
                  stats::Table::num(to_sec(par.result.elapsed), 3),
                  std::to_string(par.result.messages),
                  stats::Table::num(static_cast<double>(par.rss_kb) / 1024, 1),
                  stats::Table::num(static_cast<double>(par.rss_kb) / n, 1),
                  bit ? "yes" : "NO"});
    }
    nt.print();
    std::printf("\nKiB/node divides whole-process RSS by machine size, so"
                " small machines carry the process baseline;\nthe largest"
                " point is the honest per-node footprint.\n");
  }

  // Epoch-protocol profile of the largest parallel run.
  const Point* prof_pt = nullptr;
  for (const Point& p : tpoints) {
    if (p.shards_used > 1) prof_pt = &p;
  }
  for (const Point& p : npoints) {
    if (p.shards_used > 1) prof_pt = &p;
  }
  if (prof_pt != nullptr && prof_pt->prof.epochs > 0) {
    const auto& pr = prof_pt->prof;
    // Shares of aggregate worker time (wall x workers): on an
    // oversubscribed host, one worker's barrier wait is another worker's
    // run time, so per-wall shares would exceed 100% by construction.
    double wall =
        static_cast<double>(pr.wall_ns) * prof_pt->shards_used;
    std::printf("\nEpoch profile (%d threads, %d sim nodes): %llu epochs,"
                " %llu shard-epochs (%llu parked), %llu events"
                " (%llu stale)\n  drain %.1f%%  merge %.1f%%  barrier %.1f%%"
                "  parked %.1f%%  plan %.1f%% of aggregate worker time\n",
                prof_pt->threads, prof_pt->sim_nodes,
                static_cast<unsigned long long>(pr.epochs),
                static_cast<unsigned long long>(pr.shard_epochs),
                static_cast<unsigned long long>(pr.parked_epochs),
                static_cast<unsigned long long>(pr.events),
                static_cast<unsigned long long>(pr.stale_events),
                100 * static_cast<double>(pr.drain_ns) / wall,
                100 * static_cast<double>(pr.merge_ns) / wall,
                100 * static_cast<double>(pr.barrier_ns) / wall,
                100 * static_cast<double>(pr.parked_ns) / wall,
                100 * static_cast<double>(pr.plan_ns) / wall);
  }

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    {
      bench::JsonWriter w(f);
      w.begin_object();
      w.header("tham-scaling-v2", default_cost_model(),
               apps::em3d::Config{}.seed, env_sim_threads());
      w.field("workload", "em3d-ghost weak scaling");
      w.field("host_cpus", host_cpus);
      w.begin_array("thread_sweep");
      for (const Point& p : tpoints) {
        w.begin_object(nullptr, /*inline_scope=*/true);
        w.field("threads", p.threads);
        w.field("sim_nodes", p.sim_nodes);
        w.field("seconds", p.seconds, 6);
        w.field("seconds_sequential", seq64.seconds, 6);
        w.field("speedup", seq64.seconds / p.seconds, 4);
        w.field("bit_identical", identical(seq64, p));
        w.field("oversubscribed",
                static_cast<unsigned>(p.threads) > host_cpus);
        w.end_object();
      }
      w.end_array();
      w.begin_array("node_sweep");
      for (std::size_t i = 0; i < npoints.size(); ++i) {
        const Point& p = npoints[i];
        w.begin_object(nullptr, /*inline_scope=*/true);
        w.field("sim_nodes", p.sim_nodes);
        w.field("threads", p.threads);
        w.field("seconds", p.seconds, 6);
        w.field("vtime_ns", static_cast<long long>(p.result.elapsed));
        w.field("messages", p.result.messages);
        w.field("rss_kb", static_cast<long long>(p.rss_kb));
        w.field("bytes_per_node",
                static_cast<long long>(p.rss_kb * 1024 / p.sim_nodes));
        w.field("bit_identical", nbit[i] != 0);
        w.field("oversubscribed",
                static_cast<unsigned>(p.threads) > host_cpus);
        w.end_object();
      }
      w.end_array();
      if (prof_pt != nullptr) {
        w.begin_object("epoch_profile");
        w.field("threads", prof_pt->threads);
        w.field("sim_nodes", prof_pt->sim_nodes);
        profile_fields(w, prof_pt->prof);
        w.end_object();
      }
      w.end_object();
    }
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}

/// The perf_scaling_smoke ctest: a 10k-node EM3D run on 1 vs 4 threads.
/// Bit-identity is asserted unconditionally; the wall-clock speedup floor
/// (> 1.0x) only where it is attainable — a host with fewer than 4 cpus is
/// oversubscribed by construction and skips that assertion cleanly, as does
/// a THAM_CHECK build whose attached checker forces the sequential engine.
int scaling_smoke() {
  unsigned host_cpus = std::thread::hardware_concurrency();
  Point par = run_em3d(4, 10240);
  Point ref = run_em3d(1, 10240);
  bool bit = identical(ref, par);
  double speedup = ref.seconds / par.seconds;
  std::printf("perf_scaling_smoke: 10240-node em3d-ghost, 1 vs 4 threads\n"
              "  sequential %.3fs, parallel %.3fs (speedup %.2fx),"
              " bit-identical %s, %u host cpu(s)\n",
              ref.seconds, par.seconds, speedup, bit ? "yes" : "NO",
              host_cpus);
  if (!bit) {
    std::fprintf(stderr, "FAIL: parallel run diverged from sequential\n");
    return 1;
  }
  if (par.shards_used <= 1) {
    std::printf("  skip: run fell back to the sequential executor"
                " (THAM_CHECK build or forced sequential); speedup floor"
                " not asserted\n");
    return 0;
  }
  if (host_cpus < 4) {
    std::printf("  skip: %u host cpu(s) < 4 workers — oversubscribed, the"
                " wall-clock speedup floor is not attainable here\n",
                host_cpus);
    return 0;
  }
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx <= 1.0x on a %u-cpu host\n", speedup,
                 host_cpus);
    return 1;
  }
  return 0;
}

std::vector<int> parse_int_list(const char* s) {
  std::vector<int> out;
  while (*s != '\0') {
    char* end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s) break;
    out.push_back(static_cast<int>(v));
    s = *end == ',' ? end + 1 : end;
  }
  return out;
}

int bench_main(int argc, char** argv) {
  std::vector<int> threads;
  std::vector<int> nodes;
  bool json = false;
  std::string json_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      threads = parse_int_list(argv[++i]);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = parse_int_list(a + 10);
    } else if (std::strcmp(a, "--nodes") == 0 && i + 1 < argc) {
      nodes = parse_int_list(argv[++i]);
    } else if (std::strncmp(a, "--nodes=", 8) == 0) {
      nodes = parse_int_list(a + 8);
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json = true;
      json_path = a + 7;
    } else if (std::strcmp(a, "--smoke") == 0) {
      return scaling_smoke();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N[,N...]] [--nodes N[,N...]]"
                   " [--json[=PATH]] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!threads.empty() || !nodes.empty() || json) {
    if (threads.empty()) threads = {4};
    return host_scaling(threads, nodes, json, json_path);
  }
  return ratio_sweep();
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) { return tham::bench_main(argc, argv); }
