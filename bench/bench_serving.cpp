// Serving-fabric bench: offered load vs. latency tail on the RMI runtime.
//
//   bench_serving [--json[=PATH]]
//
// Two sweeps over the client/balancer/server fabric (src/serve):
//
//  1. Offered load 0.2x..4x of pool capacity on modern-cluster: completed
//     throughput, p50/p90/p99/p999 latency, rejection rate, and the
//     per-layer message counts (submits, forward batches, completion
//     batches, deliveries, backend lookups, total wire messages). The
//     interesting curve is the gap between nominal capacity and where
//     rejection actually starts: RMI dispatch overhead inflates effective
//     service time, so the knee arrives well before offered_load = 1 —
//     the paper's CC++-overhead thesis replayed as a serving system.
//
//  2. Tail latency vs. injected loss at fixed load on lossy-cluster over
//     transport::Reliable: the same workload at 0..10% frame loss, where
//     retransmission delays land almost entirely in the tail quantiles
//     while the median barely moves.
//
// --json writes BENCH_serving.json (schema tham-serving-v1). The sweeps
// are seeded and single-valued: rerunning the bench reproduces every
// number exactly.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "apps/topology.hpp"
#include "common/env.hpp"
#include "fault/fault.hpp"
#include "json_out.hpp"
#include "net/network.hpp"
#include "serve/serve.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"
#include "transport/reliable.hpp"

namespace tham {
namespace {

constexpr std::uint64_t kPlanSeed = 20250809;

serve::Config bench_cfg(double load) {
  serve::Config cfg;
  cfg.clients = 6;
  cfg.servers = 3;
  cfg.requests_per_client = 64;
  cfg.open_loop = true;
  cfg.offered_load = load;
  cfg.mean_service = usec(50);
  cfg.queue_cap = 16;
  cfg.batch_max = 4;
  cfg.policy = serve::Policy::LeastOutstanding;
  cfg.backend_fraction = 0.25;
  cfg.seed = 2027;
  return cfg;
}

struct ServeRun {
  double load = 0;
  double loss = 0;
  serve::Result res;
  transport::Reliable::Stats rel;
};

ServeRun run_lossy(double load, double loss) {
  serve::Config cfg = bench_cfg(load);
  sim::Engine engine(cfg.procs(), make_machine("lossy-cluster"));
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());
  fault::Plan plan;
  plan.seed = kPlanSeed;
  plan.loss = loss;
  plan.dup = loss > 0 ? 0.01 : 0;
  fault::Injector inj(plan, engine.size());
  if (loss > 0) net.set_injector(&inj);
  apps::declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  ServeRun r;
  r.load = load;
  r.loss = loss;
  r.res = serve::run(rt, cfg);
  r.rel = rel.total();
  return r;
}

void emit_point(bench::JsonWriter& w, const ServeRun& r) {
  const serve::Result& s = r.res;
  w.begin_object(nullptr, /*inline_scope=*/true);
  w.field("offered_load", r.load, 3);
  w.field("loss", r.loss, 3);
  w.field("vtime_s", to_sec(s.run.elapsed), 6);
  w.field("issued", s.issued);
  w.field("completed", s.completed);
  w.field("rejected", s.rejected);
  w.field("rejection_rate", s.rejection_rate(), 5);
  w.field("throughput_rps", s.throughput(), 1);
  w.field("p50_us", to_usec(s.latency.p50()), 2);
  w.field("p90_us", to_usec(s.latency.p90()), 2);
  w.field("p99_us", to_usec(s.latency.p99()), 2);
  w.field("p999_us", to_usec(s.latency.p999()), 2);
  w.field("mean_queue_depth", s.queue_depth.mean(), 3);
  w.field("submits", s.submits);
  w.field("forward_batches", s.forward_batches);
  w.field("completion_batches", s.completion_batches);
  w.field("deliveries", s.deliveries);
  w.field("backend_lookups", s.backend_lookups);
  w.field("net_messages", s.net_messages);
  w.end_object();
}

int run_bench(bool json, const std::string& json_path) {
  serve::Config shape = bench_cfg(1.0);
  std::printf("Serving fabric: %d clients -> balancer -> %d servers "
              "(+backend), %llu requests, %s\n\n",
              shape.clients, shape.servers,
              static_cast<unsigned long long>(shape.total_requests()),
              serve::policy_name(shape.policy));

  // Sweep 1: offered load on modern-cluster.
  const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.5, 4.0};
  CostModel modern = make_machine("modern-cluster");
  std::vector<ServeRun> load_runs;
  load_runs.reserve(loads.size());
  for (double load : loads) {
    ServeRun r;
    r.load = load;
    r.res = serve::run(bench_cfg(load), modern);
    load_runs.push_back(std::move(r));
  }

  std::printf("offered load sweep (modern-cluster):\n");
  stats::Table t({"load", "thru (r/s)", "reject", "p50 (us)", "p90 (us)",
                  "p99 (us)", "p999 (us)", "msgs"});
  for (const ServeRun& r : load_runs) {
    const serve::Result& s = r.res;
    t.add_row({stats::Table::num(r.load, 2),
               stats::Table::num(s.throughput(), 0),
               stats::Table::num(s.rejection_rate() * 100, 1) + "%",
               stats::Table::num(to_usec(s.latency.p50()), 1),
               stats::Table::num(to_usec(s.latency.p90()), 1),
               stats::Table::num(to_usec(s.latency.p99()), 1),
               stats::Table::num(to_usec(s.latency.p999()), 1),
               std::to_string(s.net_messages)});
  }
  t.print();

  // Rejection must be monotone in offered load (same seeds, same arrival
  // pattern scaled): a violation means admission accounting broke.
  for (std::size_t i = 1; i < load_runs.size(); ++i) {
    if (load_runs[i].res.rejected < load_runs[i - 1].res.rejected) {
      std::printf("\nERROR: rejection not monotone in offered load\n");
      return 1;
    }
  }

  // Sweep 2: tail vs. loss at 0.8x load on lossy-cluster + Reliable.
  const std::vector<double> losses = {0, 0.01, 0.02, 0.05, 0.10};
  std::vector<ServeRun> loss_runs;
  loss_runs.reserve(losses.size());
  for (double loss : losses) loss_runs.push_back(run_lossy(0.8, loss));

  std::printf("\ntail latency vs. loss (lossy-cluster, transport::Reliable, "
              "load 0.8):\n");
  stats::Table lt({"loss", "thru (r/s)", "p50 (us)", "p99 (us)", "p999 (us)",
                   "retx", "acks"});
  for (const ServeRun& r : loss_runs) {
    const serve::Result& s = r.res;
    lt.add_row({stats::Table::num(r.loss * 100, 1) + "%",
                stats::Table::num(s.throughput(), 0),
                stats::Table::num(to_usec(s.latency.p50()), 1),
                stats::Table::num(to_usec(s.latency.p99()), 1),
                stats::Table::num(to_usec(s.latency.p999()), 1),
                std::to_string(r.rel.retransmits),
                std::to_string(r.rel.acks_sent)});
  }
  lt.print();

  // Reliability guarantee: every issued request is answered at every loss
  // rate (completed + rejected == issued), or the transport dropped RPCs.
  for (const ServeRun& r : loss_runs) {
    if (r.res.completed + r.res.rejected != r.res.issued) {
      std::printf("\nERROR: lost RPCs at %.0f%% loss\n", r.loss * 100);
      return 1;
    }
  }

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    {
      bench::JsonWriter w(f);
      w.begin_object();
      w.header("tham-serving-v1", modern, shape.seed, env_sim_threads());
      w.field("workload",
              "6 clients -> balancer -> 3 servers + backend, open loop, "
              "least-outstanding, batch 4, queue cap 16");
      w.begin_array("load_sweep");
      for (const ServeRun& r : load_runs) emit_point(w, r);
      w.end_array();
      w.begin_array("loss_sweep");
      for (const ServeRun& r : loss_runs) emit_point(w, r);
      w.end_array();
      w.end_object();
    }
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) {
  bool json = false;
  std::string path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]]\n", argv[0]);
      return 2;
    }
  }
  return tham::run_bench(json, path);
}
