#pragma once
// One JSON emitter for every benchmark driver that writes machine-readable
// results (bench_hostperf, bench_scaling). The hand-rolled fprintf blocks
// in each driver had already drifted apart in quoting and comma handling;
// this keeps those rules in one place.
//
// The writer is deliberately tiny: objects and arrays nest, the scalar
// overloads cover exactly the types the benches emit, and row objects can
// be rendered inline (one line per row) so committed BENCH_*.json diffs
// stay readable. Every bench header records the active machine profile via
// machine_field() so a result file is self-describing: a modern-cluster
// run can never be mistaken for an SP-2 calibration run.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cost_model.hpp"

namespace tham::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Opens `{`. With `inline_scope` the object's members are rendered on
  /// one line (", "-separated) — the shape used for per-benchmark rows.
  void begin_object(const char* key = nullptr, bool inline_scope = false) {
    prefix(key);
    std::fputc('{', f_);
    stack_.push_back(Scope{true, inline_scope});
  }
  void end_object() { close('}'); }

  void begin_array(const char* key = nullptr) {
    prefix(key);
    std::fputc('[', f_);
    stack_.push_back(Scope{true, false});
  }
  void end_array() { close(']'); }

  void field(const char* key, const char* v) {
    prefix(key);
    write_string(v);
  }
  void field(const char* key, const std::string& v) { field(key, v.c_str()); }
  void field(const char* key, bool v) {
    prefix(key);
    std::fputs(v ? "true" : "false", f_);
  }
  void field(const char* key, int v) {
    prefix(key);
    std::fprintf(f_, "%d", v);
  }
  void field(const char* key, unsigned v) {
    prefix(key);
    std::fprintf(f_, "%u", v);
  }
  void field(const char* key, long long v) {
    prefix(key);
    std::fprintf(f_, "%lld", v);
  }
  void field(const char* key, std::uint64_t v) {
    prefix(key);
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
  }
  /// Doubles carry an explicit precision: benches choose how many digits
  /// are meaningful per metric (seconds vs. rates).
  void field(const char* key, double v, int digits) {
    prefix(key);
    std::fprintf(f_, "%.*f", digits, v);
  }
  void null_field(const char* key) {
    prefix(key);
    std::fputs("null", f_);
  }

  /// Records which machine profile produced the numbers in this file.
  void machine_field(const CostModel& cm) { field("machine", cm.machine); }

  /// The common result-file header every bench writes first, immediately
  /// after begin_object(): schema name, machine profile, the workload seed
  /// (0 when the workload is unseeded), and the THAM_SIM_THREADS setting
  /// the process ran under. Keeping the block here means every committed
  /// BENCH_*.json is self-describing the same way, and a schema change
  /// never touches the per-bench payload below it.
  void header(const char* schema, const CostModel& cm, std::uint64_t seed,
              int sim_threads) {
    field("schema", schema);
    machine_field(cm);
    field("seed", seed);
    field("sim_threads", sim_threads);
  }

  /// All scopes must be closed before the writer goes away.
  ~JsonWriter() {
    THAM_CHECK_MSG(stack_.empty(), "JsonWriter destroyed with open scopes");
  }

 private:
  struct Scope {
    bool first;         ///< no element written yet in this scope
    bool inline_scope;  ///< members on one line instead of one per line
  };

  // Emits the separator/indent for the next element, then the key (if any).
  void prefix(const char* key) {
    if (!stack_.empty()) {
      Scope& s = stack_.back();
      if (!s.first) std::fputc(',', f_);
      if (s.inline_scope) {
        if (!s.first) std::fputc(' ', f_);
      } else {
        std::fputc('\n', f_);
        indent();
      }
      s.first = false;
    }
    if (key != nullptr) {
      write_string(key);
      std::fputs(": ", f_);
    }
  }

  void close(char closer) {
    THAM_CHECK(!stack_.empty());
    Scope done = stack_.back();
    stack_.pop_back();
    if (!done.inline_scope && !done.first) {
      std::fputc('\n', f_);
      indent();
    }
    std::fputc(closer, f_);
    if (stack_.empty()) std::fputc('\n', f_);
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", f_);
  }

  // Benchmark names and profile names are identifiers, but escape the two
  // characters that would corrupt the file if one ever slips through.
  void write_string(const char* s) {
    std::fputc('"', f_);
    for (; *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') std::fputc('\\', f_);
      std::fputc(*s, f_);
    }
    std::fputc('"', f_);
  }

  std::FILE* f_;
  std::vector<Scope> stack_;
};

}  // namespace tham::bench
