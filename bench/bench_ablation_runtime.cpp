// Ablations of the CC++/ThAM design decisions called out in Section 4 of
// the paper and DESIGN.md:
//   D1  method stub caching     (vs shipping the name on every RMI)
//   D2  persistent S-/R-buffers (vs a dynamic buffer per message)
//   D3  polling reception       (vs interrupt-driven reception)
//   D4  lightweight non-preemptive threads (vs a heavyweight package)
// Each ablation reruns the warm null-RMI micro-benchmark and a
// representative application with one decision reverted.

#include <cstdio>

#include "apps/em3d.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

struct Probe {
  long nop() { return 0; }
  long put(std::vector<double> v) { return static_cast<long>(v.size()); }
};

/// Warm per-call time of a null RMI and of a 20-double bulk RMI.
void micro(const CostModel& cm, double* null_us, double* bulk_us) {
  sim::Engine engine(2, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto nop = rt.def_method("Probe::nop", &Probe::nop);
  auto put = rt.def_method("Probe::put", &Probe::put);
  auto obj = rt.place<Probe>(1);
  std::vector<double> data(20, 1.0);
  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    (void)rt.rmi(obj, nop);
    (void)rt.rmi(obj, put, data);
    constexpr int kIters = 2000;
    SimTime t0 = n.now();
    for (int i = 0; i < kIters; ++i) (void)rt.rmi(obj, nop);
    SimTime t1 = n.now();
    for (int i = 0; i < kIters; ++i) (void)rt.rmi(obj, put, data);
    SimTime t2 = n.now();
    *null_us = to_usec(t1 - t0) / kIters;
    *bulk_us = to_usec(t2 - t1) / kIters;
  });
}

double em3d_ghost_sec(const CostModel& cm) {
  apps::em3d::Config cfg;
  cfg.remote_fraction = 1.0;
  cfg.iters = 10;
  return to_sec(apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost, cm)
                    .elapsed);
}

double water64_sec(const CostModel& cm) {
  apps::water::Config cfg;
  cfg.molecules = 64;
  return to_sec(
      apps::water::run_ccxx(cfg, apps::water::Version::Atomic, cm).elapsed);
}

}  // namespace

int bench_main() {
  std::printf("Ablations of the ThAM design decisions (CC++ runtime)\n\n");

  stats::Table t({"configuration", "null RMI (us)", "bulk RMI (us)",
                  "em3d-ghost (s)", "water-atomic-64 (s)"});

  auto row = [&](const char* name, const CostModel& cm) {
    double null_us = 0, bulk_us = 0;
    micro(cm, &null_us, &bulk_us);
    t.add_row({name, stats::Table::num(null_us, 1),
               stats::Table::num(bulk_us, 1),
               stats::Table::num(em3d_ghost_sec(cm), 3),
               stats::Table::num(water64_sec(cm), 3)});
  };

  row("baseline (all optimizations)", sp2_cost_model());

  {
    CostModel cm = sp2_cost_model();
    cm.cc_stub_caching = false;
    row("D1: no stub caching", cm);
  }
  {
    CostModel cm = sp2_cost_model();
    cm.cc_persistent_buffers = false;
    row("D2: no persistent buffers", cm);
  }
  {
    // D3: interrupt-driven reception — every message delivery pays the
    // software-interrupt cost instead of riding a cheap poll.
    CostModel cm = sp2_cost_model();
    cm.am_recv_overhead += cm.software_interrupt;
    row("D3: interrupts instead of polling", cm);
  }
  {
    // D4: heavyweight / preemptive thread package (the paper: thread mgmt
    // "can be prohibitively high if a more heavyweight or preemptive
    // threads package is used").
    CostModel cm = sp2_cost_model();
    cm.thread_create = cm.nx_thread_create;
    cm.context_switch = cm.nx_context_switch;
    cm.sync_op = cm.nx_sync_op;
    row("D4: heavyweight threads", cm);
  }
  {
    // D2b: the paper's suggested future optimization — the initiator of a
    // bulk read passes an R-buffer address, eliminating the extra reply
    // copy. Approximated by halving the reply-side copy cost.
    CostModel cm = sp2_cost_model();
    cm.memcpy_per_byte = cm.memcpy_per_byte / 2;
    row("paper 6.1: reply R-buffer optimization (approx.)", cm);
  }

  t.print();
  std::printf("\nExpected shape: each reverted decision slows the null RMI"
              " and/or the applications; D3 dominates (the reason the\n"
              "runtime polls), D1 adds a name per call, D2 a buffer"
              " allocation per call, D4 inflates every fork and switch.\n");
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
