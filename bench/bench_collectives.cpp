// Collectives at scale: what does replacing the linear coordinator
// protocols with log-depth ones actually buy, per machine profile?
//
//   bench_collectives [--smoke] [--json[=PATH]]
//
// For every machine profile the sweep runs barrier / all-reduce /
// broadcast at N = 64 .. 102400 simulated nodes under both algorithms —
// Algo::Linear (every rank funnels through node 0, the pre-collectives
// runtime protocol) and Algo::Tree (dissemination barrier, radix-k
// combining tree) — and reports virtual time per operation plus the
// crossover: the smallest N where the tree wins. All-to-all sweeps a
// smaller range (its payload is inherently O(N) per rank), and a
// polling-vs-daemon column shows what the condvar discipline costs on top
// of the same wire traffic. On lossy-cluster the wire additionally drops,
// duplicates, and delays frames per the profile's fault defaults, over
// transport::Reliable — the tree's advantage must survive retransmission.
//
// --json writes BENCH_collectives.json (schema tham-coll-v1). --smoke
// runs the sp2 profile at N = 64/256/1024 only and exits nonzero if the
// tree fails to beat the linear coordinator at N >= 256 (the ctest
// coll_smoke gate).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "coll/coll.hpp"
#include "common/env.hpp"
#include "common/machine.hpp"
#include "fault/fault.hpp"
#include "json_out.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"
#include "transport/reliable.hpp"

namespace tham {
namespace {

constexpr std::uint64_t kFaultSeed = 20260809;
constexpr int kOpsPerPhase = 3;  ///< ops averaged per measurement

struct CasePoint {
  double barrier_us = 0;  ///< virtual usec per op, rank-0 clock
  double reduce_us = 0;
  double bcast_us = 0;
};

double per_op_us(SimTime dt) {
  return static_cast<double>(dt) / 1000.0 / kOpsPerPhase;
}

/// One engine run measuring all three phases: N ranks do kOpsPerPhase
/// barriers, then reduces, then broadcasts, with rank 0's clock read at
/// the phase boundaries. Barrier and reduce are globally synchronizing,
/// so rank 0's deltas are true per-op times; broadcast's root never
/// waits, so that column is the root's injection time — O(N) sends under
/// Linear vs O(radix) under Tree, which is exactly the hotspot contrast.
CasePoint run_case(const CostModel& cm, int nodes, coll::Algo algo,
                   coll::Progress progress) {
  std::size_t stack = nodes >= 10000 ? 32 * 1024 : 128 * 1024;
  sim::Engine engine(nodes, cm, stack);
  net::Network net(engine);
  am::AmLayer am(net);

  // lossy-cluster carries nonzero fault defaults: run the collectives
  // over the reliable transport on the misbehaving wire it describes.
  std::unique_ptr<transport::Reliable> rel;
  std::unique_ptr<fault::Injector> inj;
  fault::Plan plan = fault::Plan::from_machine(cm, kFaultSeed);
  if (plan.loss > 0 || plan.dup > 0 || plan.delay > 0 || plan.corrupt > 0) {
    rel = std::make_unique<transport::Reliable>(am.channel());
    inj = std::make_unique<fault::Injector>(plan, engine.size());
    net.set_injector(inj.get());
  }

  coll::Collectives coll(engine, am, coll::Config{algo, progress, 0});

  CasePoint out;
  for (NodeId i = 0; i < nodes; ++i) {
    engine.node(i).spawn(
        [&, i] {
          double v = 1.0 + 0.25 * i;
          for (int k = 0; k < kOpsPerPhase; ++k) coll.barrier();
          SimTime t1 = i == 0 ? sim::this_node().now() : 0;
          double acc = 0;
          for (int k = 0; k < kOpsPerPhase; ++k) {
            acc += coll.all_reduce_sum(v + k);
          }
          SimTime t2 = i == 0 ? sim::this_node().now() : 0;
          for (int k = 0; k < kOpsPerPhase; ++k) {
            acc += coll.broadcast(0, v);
          }
          if (i == 0) {
            SimTime t3 = sim::this_node().now();
            out.barrier_us = per_op_us(t1);
            out.reduce_us = per_op_us(t2 - t1);
            out.bcast_us = per_op_us(t3 - t2);
          }
          if (acc == 12345.6789) std::abort();  // keep acc observable
        },
        "coll-bench-main");
  }
  if (progress == coll::Progress::Daemon) coll.start_progress_daemons();
  engine.run();
  return out;
}

/// All-to-all virtual time per op (small N only: O(N) words per rank).
double run_a2a(const CostModel& cm, int nodes, coll::Algo algo) {
  sim::Engine engine(nodes, cm, 128 * 1024);
  net::Network net(engine);
  am::AmLayer am(net);
  coll::Collectives coll(engine, am,
                         coll::Config{algo, coll::Progress::Polling, 0});
  double us = 0;
  for (NodeId i = 0; i < nodes; ++i) {
    engine.node(i).spawn(
        [&, i] {
          std::vector<std::uint64_t> out(static_cast<std::size_t>(nodes)),
              in;
          for (int j = 0; j < nodes; ++j) {
            out[static_cast<std::size_t>(j)] =
                static_cast<std::uint64_t>(i + j);
          }
          for (int k = 0; k < kOpsPerPhase; ++k) coll.all_to_all(out, in);
          if (i == 0) us = per_op_us(sim::this_node().now());
        },
        "a2a-bench-main");
  }
  engine.run();
  return us;
}

struct SweepRow {
  int nodes = 0;
  CasePoint linear;
  CasePoint tree;
};

int run_bench(bool smoke, bool json, const std::string& json_path) {
  // Full sweep tops out at 16384: past that, the dissemination graph's
  // millions of touched (src,dst) pairs make each engine's allocator
  // footprint balloon, and a 5-profile x 2-algo sweep accumulates tens of
  // GB of retained heap on small runners. 16384 already shows a ~400x
  // linear-vs-tree barrier gap; nothing new happens at 100k.
  std::vector<int> sizes = smoke
                               ? std::vector<int>{64, 256, 1024}
                               : std::vector<int>{64, 256, 1024, 4096,
                                                  16384};
  std::vector<int> a2a_sizes =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 256, 1024};
  std::vector<const MachineProfile*> profiles;
  for (const MachineProfile& mp : machine_profiles()) {
    if (!smoke || std::string(mp.name) == "sp2") profiles.push_back(&mp);
  }

  bool gate_ok = true;
  std::map<std::string, std::vector<SweepRow>> sweeps;
  std::map<std::string, std::vector<std::pair<int, double>>> a2a_tree;
  std::map<std::string, std::vector<std::pair<int, double>>> a2a_linear;
  std::map<std::string, std::vector<std::pair<int, double>>> daemon_us;

  for (const MachineProfile* mp : profiles) {
    CostModel cm = mp->make();
    // Lossy profiles run over transport::Reliable, whose per-message
    // retransmission state (stacked on the retained heap of the clean
    // profiles that ran first) exceeds small-runner memory at 16384
    // nodes. 4096 under loss already shows the tree winning by >100x.
    fault::Plan fp = fault::Plan::from_machine(cm, kFaultSeed);
    bool lossy = fp.loss > 0 || fp.dup > 0 || fp.delay > 0 || fp.corrupt > 0;
    std::printf("%s: radix %d\n", cm.machine,
                coll::default_radix(cm));
    stats::Table t({"nodes", "lin bar (us)", "tree bar (us)",
                    "lin red (us)", "tree red (us)", "lin bc (us)",
                    "tree bc (us)"});
    for (int n : sizes) {
      if (lossy && n > 4096) continue;
      SweepRow row;
      row.nodes = n;
      row.linear = run_case(cm, n, coll::Algo::Linear,
                            coll::Progress::Polling);
      row.tree = run_case(cm, n, coll::Algo::Tree, coll::Progress::Polling);
      sweeps[cm.machine].push_back(row);
      t.add_row({std::to_string(n), stats::Table::num(row.linear.barrier_us, 1),
                 stats::Table::num(row.tree.barrier_us, 1),
                 stats::Table::num(row.linear.reduce_us, 1),
                 stats::Table::num(row.tree.reduce_us, 1),
                 stats::Table::num(row.linear.bcast_us, 1),
                 stats::Table::num(row.tree.bcast_us, 1)});
      if (n >= 256 && (row.tree.barrier_us >= row.linear.barrier_us ||
                       row.tree.reduce_us >= row.linear.reduce_us)) {
        gate_ok = false;
        std::printf("GATE: tree does not beat linear at %d nodes on %s\n",
                    n, cm.machine);
      }
    }
    t.print();
    for (int n : a2a_sizes) {
      a2a_linear[cm.machine].emplace_back(
          n, run_a2a(cm, n, coll::Algo::Linear));
      a2a_tree[cm.machine].emplace_back(n, run_a2a(cm, n, coll::Algo::Tree));
    }
    // Daemon progress on the tree barrier+reduce+broadcast mix: same wire
    // traffic, condvar wakeups instead of waiter-driven polling.
    for (int n : a2a_sizes) {
      CasePoint d = run_case(cm, n, coll::Algo::Tree,
                             coll::Progress::Daemon);
      daemon_us[cm.machine].emplace_back(
          n, d.barrier_us + d.reduce_us + d.bcast_us);
    }
    std::printf("\n");
    std::fflush(stdout);  // progress is visible per profile when redirected
  }

  std::printf("crossover (smallest N where the tree barrier wins):\n");
  for (const auto& [machine, rows] : sweeps) {
    int crossover = 0;
    for (const SweepRow& r : rows) {
      if (r.tree.barrier_us < r.linear.barrier_us) {
        crossover = r.nodes;
        break;
      }
    }
    std::printf("  %-16s %d\n", machine.c_str(), crossover);
  }

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    {
      bench::JsonWriter w(f);
      w.begin_object();
      w.header("tham-coll-v1", default_cost_model(), kFaultSeed,
               env_sim_threads());
      w.field("ops_per_phase", kOpsPerPhase);
      w.begin_array("profiles");
      for (const MachineProfile* mp : profiles) {
        CostModel cm = mp->make();
        const auto& rows = sweeps[cm.machine];
        w.begin_object();
        w.field("machine", cm.machine);
        w.field("radix", coll::default_radix(cm));
        int crossover = 0;
        for (const SweepRow& r : rows) {
          if (r.tree.barrier_us < r.linear.barrier_us) {
            crossover = r.nodes;
            break;
          }
        }
        w.field("crossover_nodes", crossover);
        w.begin_array("sweep");
        for (const SweepRow& r : rows) {
          w.begin_object(nullptr, /*inline_scope=*/true);
          w.field("nodes", r.nodes);
          w.field("linear_barrier_us", r.linear.barrier_us, 2);
          w.field("tree_barrier_us", r.tree.barrier_us, 2);
          w.field("linear_reduce_us", r.linear.reduce_us, 2);
          w.field("tree_reduce_us", r.tree.reduce_us, 2);
          w.field("linear_bcast_us", r.linear.bcast_us, 2);
          w.field("tree_bcast_us", r.tree.bcast_us, 2);
          w.end_object();
        }
        w.end_array();
        w.begin_array("all_to_all");
        for (std::size_t i = 0; i < a2a_tree[cm.machine].size(); ++i) {
          w.begin_object(nullptr, /*inline_scope=*/true);
          w.field("nodes", a2a_tree[cm.machine][i].first);
          w.field("linear_us", a2a_linear[cm.machine][i].second, 2);
          w.field("staged_us", a2a_tree[cm.machine][i].second, 2);
          w.end_object();
        }
        w.end_array();
        w.begin_array("daemon_progress");
        for (std::size_t i = 0; i < daemon_us[cm.machine].size(); ++i) {
          const auto& rows2 = sweeps[cm.machine];
          double polling = 0;
          for (const SweepRow& r : rows2) {
            if (r.nodes == daemon_us[cm.machine][i].first) {
              polling = r.tree.barrier_us + r.tree.reduce_us +
                        r.tree.bcast_us;
            }
          }
          w.begin_object(nullptr, /*inline_scope=*/true);
          w.field("nodes", daemon_us[cm.machine][i].first);
          w.field("polling_us", polling, 2);
          w.field("daemon_us", daemon_us[cm.machine][i].second, 2);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.field("gate_tree_beats_linear_from_256", gate_ok);
      w.end_object();
    }
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!gate_ok) {
    std::printf("FAILED: linear coordinator outperformed the tree at >= 256"
                " nodes\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) {
  bool smoke = false, json = false;
  std::string path = "BENCH_collectives.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json[=PATH]]\n", argv[0]);
      return 2;
    }
  }
  return tham::run_bench(smoke, json, path);
}
